(* Line protocol of the scheduling daemon. One command per line; every
   request line gets exactly one reply. Replies that carry a mapping
   are framed between `BEGIN <id> <ok|partial>` and `END <id>` with a
   body that is byte-for-byte the `batch` CLI rendering of the same
   response, so a client (or a differential test) can compare daemon
   and batch output literally. *)

type command =
  | Submit of { id : string option; request : Service.Request.t }
  | Trace of string
  | Metrics
  | Ping
  | Quit

type parsed =
  | Nothing
  | Command of command
  | Malformed of { id : string option; reason : string }

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let max_id_length = 64

let id_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let valid_id s =
  let n = String.length s in
  n > 0 && n <= max_id_length && String.for_all id_char s

let parse ~load_graph ?default_spes ?default_strategy lineno line =
  let line =
    (* Tolerate CRLF clients. *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  let stripped =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_words stripped with
  | [] -> Nothing
  | [ "METRICS" ] -> Command Metrics
  | [ "PING" ] -> Command Ping
  | [ "QUIT" ] -> Command Quit
  | [ "TRACE"; id ] when valid_id id -> Command (Trace id)
  | [ "TRACE"; id ] ->
      Malformed
        {
          id = None;
          reason =
            Printf.sprintf
              "invalid trace id %S (want 1-%d chars of [A-Za-z0-9_.:-])" id
              max_id_length;
        }
  | [ "TRACE" ] -> Malformed { id = None; reason = "TRACE takes exactly one id" }
  | "TRACE" :: _ :: _ :: _ ->
      Malformed { id = None; reason = "TRACE takes exactly one id" }
  | ("METRICS" | "PING" | "QUIT") :: _ :: _ ->
      Malformed { id = None; reason = "verb takes no arguments" }
  | words -> (
      (* Peel the id= attribute (protocol-level, not a request field)
         and hand the rest to the batch request grammar. *)
      let id = ref None and bad = ref None in
      let rest =
        List.filter
          (fun w ->
            if String.length w > 3 && String.sub w 0 3 = "id=" then begin
              let v = String.sub w 3 (String.length w - 3) in
              if valid_id v then
                match !id with
                | None -> id := Some v
                | Some _ -> bad := Some "duplicate id= attribute"
              else
                bad :=
                  Some
                    (Printf.sprintf
                       "invalid id %S (want 1-%d chars of [A-Za-z0-9_.:-])" v
                       max_id_length);
              false
            end
            else if w = "id=" then begin
              bad := Some "empty id= attribute";
              false
            end
            else true)
          words
      in
      match !bad with
      | Some reason -> Malformed { id = !id; reason }
      | None -> (
          match
            Service.Request.parse_line ~load_graph ?default_spes
              ?default_strategy lineno (String.concat " " rest)
          with
          | Some request -> Command (Submit { id = !id; request })
          | None ->
              (* Only id= tokens on the line: an id with no request. *)
              Malformed { id = !id; reason = "id= without a request" }
          | exception Failure reason -> Malformed { id = !id; reason }
          | exception exn ->
              Malformed { id = !id; reason = Printexc.to_string exn }))

(* --- reply rendering ------------------------------------------------------ *)

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* [bound] is quoted only on partial replies: a partial answer is the
   one case where the client cannot tell how far from optimal it is, so
   the proven lower bound and the implied gap ride along as extra body
   lines. Complete replies stay byte-identical to the historical frame
   (clients and the CI regexes parse them positionally). *)
let render_reply ~id ~partial ?bound response =
  let bound_lines =
    match bound with
    | Some lb when partial ->
        let p = response.Service.Batch.period in
        let gap =
          if p > 0. && Float.is_finite p then (p -. lb) /. p *. 100. else 0.
        in
        Printf.sprintf "lower_bound: %.17g s\ngap: %.2f%%\n" lb gap
    | _ -> ""
  in
  Printf.sprintf "BEGIN %s %s\n%s%sEND %s\n" id
    (if partial then "partial" else "ok")
    (Service.Batch.render response)
    bound_lines id

let render_reject ~id = Printf.sprintf "REJECT %s overload\n" id
let render_error ~id reason = Printf.sprintf "ERROR %s %s\n" id (one_line reason)
let render_metrics body = Printf.sprintf "BEGIN metrics\n%sEND metrics\n" body

let render_trace ~id body =
  Printf.sprintf "BEGIN trace %s\n%sEND trace %s\n" id body id
let pong = "PONG\n"
let bye = "BYE\n"

(* --- request rendering (stream generators, round-trip tests) -------------- *)

let render_request ?id (r : Service.Request.t) =
  let b = Buffer.create 96 in
  Buffer.add_string b r.label;
  Printf.bprintf b " spes=%d" r.platform.Cell.Platform.n_spe;
  (match r.strategy with
  | Service.Request.Portfolio { seed; restarts } ->
      Printf.bprintf b " strategy=portfolio seed=%d restarts=%d" seed restarts
  | Service.Request.Bb { rel_gap; max_nodes } ->
      Printf.bprintf b " strategy=bb gap=%.17g max-nodes=%d" rel_gap max_nodes);
  (match r.deadline_ms with
  | Some ms -> Printf.bprintf b " deadline=%.17g" ms
  | None -> ());
  if r.prio <> 0 then Printf.bprintf b " prio=%d" r.prio;
  (match id with Some id -> Printf.bprintf b " id=%s" id | None -> ());
  Buffer.contents b
