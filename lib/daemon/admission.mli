(** Bounded priority admission queue.

    Holds the daemon's not-yet-dispatched requests, ordered by priority
    (higher first) with FIFO tie-breaking by arrival. The [bound]
    covers {e queued plus in-flight} work: once [load] reaches it,
    {!admit} refuses — the server replies [REJECT overload] immediately
    rather than queueing without bound, so a client always learns the
    fate of its request in bounded time. Single-owner: only the server
    loop touches a queue (dispatch and completion both run there). *)

type 'a t

val create : bound:int -> 'a t
(** @raise Invalid_argument on a non-positive bound. *)

val bound : 'a t -> int

val pending : 'a t -> int
(** Admitted but not yet dispatched. *)

val inflight : 'a t -> int
(** Dispatched ({!next}) but not yet finished ({!finish}). *)

val load : 'a t -> int
(** [pending + inflight] — the quantity compared against the bound. *)

val admit : 'a t -> prio:int -> 'a -> bool
(** Enqueue unless [load () >= bound]; [false] means reject. *)

val next : 'a t -> 'a option
(** Pop the highest-priority (FIFO within a level) pending item and
    count it in flight. *)

val finish : 'a t -> unit
(** Mark one in-flight item complete.
    @raise Invalid_argument if nothing is in flight. *)
