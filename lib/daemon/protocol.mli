(** Line protocol of the scheduling daemon.

    {b Grammar} (one command per line; [#] starts a comment, blank
    lines are ignored, a trailing [\r] is tolerated):

    {v
    line     ::= request | "TRACE" TOKEN | "METRICS" | "PING" | "QUIT" | blank
    request  ::= <graph-file> attr*          ; the batch request grammar
    attr     ::= spes=N | strategy=portfolio|bb | seed=N | restarts=N
               | gap=F | max-nodes=N | deadline=MS | prio=N | id=TOKEN
    TOKEN    ::= 1-64 chars of [A-Za-z0-9_.:-]
    v}

    [id=] is protocol-level (echoed in the reply so pipelined clients
    can match replies to requests); the server assigns sequential ids
    to requests that omit it. Everything else is exactly the grammar of
    {!Service.Request.parse_line}.

    {b Replies} — one per request line, in completion order:

    {v
    BEGIN <id> ok|partial          ; mapping follows, `partial` when the
    <batch render block>           ;   deadline cancelled the solve
    END <id>
    REJECT <id> overload           ; admission bound hit
    ERROR <id> <reason>            ; unparseable line
    PONG                           ; reply to PING
    BEGIN metrics ... END metrics  ; reply to METRICS (Prometheus text)
    BEGIN trace <id> ... END trace <id>  ; reply to TRACE (span tree)
    BYE                            ; reply to QUIT, then shutdown
    v}

    [TRACE <id>] returns the retained span tree of a completed request
    (one [span <path> dur_ms=... k=v] line per span, parents first);
    an unknown or evicted id gets an [ERROR] reply.

    The body between [BEGIN]/[END] is byte-for-byte
    {!Service.Batch.render} of the response, so daemon replies can be
    compared literally against [batch] CLI output. *)

type command =
  | Submit of { id : string option; request : Service.Request.t }
      (** [id = None] when the client omitted [id=]; the server assigns
          one before replying. *)
  | Trace of string  (** [TRACE <id>]: the span tree of request [id]. *)
  | Metrics
  | Ping
  | Quit

type parsed =
  | Nothing  (** Blank or comment-only line. *)
  | Command of command
  | Malformed of { id : string option; reason : string }
      (** Reply with [ERROR]; [id] is echoed when it parsed. *)

val max_id_length : int

val valid_id : string -> bool

val parse :
  load_graph:(string -> Streaming.Graph.t) ->
  ?default_spes:int ->
  ?default_strategy:Service.Request.strategy ->
  int ->
  string ->
  parsed
(** Total: never raises; any parse failure (including an exception from
    [load_graph]) becomes {!Malformed}. [lineno] seeds error messages. *)

val render_reply :
  id:string -> partial:bool -> ?bound:float -> Service.Batch.response -> string
(** [bound] (a proven lower bound on the optimal period) is quoted —
    with the optimality gap it implies against the response period — as
    extra [lower_bound:]/[gap:] body lines on {e partial} replies only;
    complete ([ok]) replies stay byte-identical to the historical
    frame. *)

val render_reject : id:string -> string
val render_error : id:string -> string -> string
(** Newlines in the reason are flattened to keep the reply one line. *)

val render_metrics : string -> string

val render_trace : id:string -> string -> string
(** Frame a span-tree body as [BEGIN trace <id> ... END trace <id>]. *)

val pong : string
val bye : string

val render_request : ?id:string -> Service.Request.t -> string
(** A request line (no trailing newline) that {!parse} maps back to an
    equal request — used by stream generators and round-trip tests.
    [label] must be a loadable graph path without whitespace. *)
