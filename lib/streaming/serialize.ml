exception Parse_error of int * string

(* The format tokenizes on whitespace and strips '#' comments, so task
   names containing such bytes would corrupt the stream when printed
   raw (the round-trip bug pinned by test_streaming). Names are
   percent-encoded on output: every byte that could break tokenization
   ('#', '=', '%', whitespace, non-printables) becomes "%XX". *)
let must_escape = function
  | ' ' | '\t' | '\n' | '\r' | '#' | '%' | '=' -> true
  | c -> Char.code c < 0x20 || Char.code c > 0x7e

let escape_name name =
  if not (String.exists must_escape name) then name
  else begin
    let buf = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        if must_escape c then
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      name;
    Buffer.contents buf
  end

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# cellstream application graph\n";
  for k = 0 to Graph.n_tasks g - 1 do
    let t = Graph.task g k in
    Buffer.add_string buf
      (Printf.sprintf
         "task %s wppe=%.17g wspe=%.17g peek=%d stateful=%d read=%.17g \
          write=%.17g\n"
         (escape_name t.Task.name) t.Task.w_ppe t.Task.w_spe t.Task.peek
         (if t.Task.stateful then 1 else 0)
         t.Task.read_bytes t.Task.write_bytes)
  done;
  for e = 0 to Graph.n_edges g - 1 do
    let { Graph.src; dst; data_bytes } = Graph.edge g e in
    Buffer.add_string buf
      (Printf.sprintf "edge %s %s data=%.17g\n"
         (escape_name (Graph.task g src).Task.name)
         (escape_name (Graph.task g dst).Task.name)
         data_bytes)
  done;
  Buffer.contents buf

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt

let unescape_name lineno word =
  match String.index_opt word '%' with
  | None -> word
  | Some _ ->
      let buf = Buffer.create (String.length word) in
      let n = String.length word in
      let i = ref 0 in
      while !i < n do
        (if word.[!i] <> '%' then Buffer.add_char buf word.[!i]
         else begin
           if !i + 2 >= n then fail lineno "truncated %%XX escape in %S" word;
           (match int_of_string_opt ("0x" ^ String.sub word (!i + 1) 2) with
           | Some code -> Buffer.add_char buf (Char.chr code)
           | None -> fail lineno "invalid %%XX escape in %S" word);
           i := !i + 2
         end);
        incr i
      done;
      Buffer.contents buf

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* Parse a [key=value] word. *)
let keyval lineno word =
  match String.index_opt word '=' with
  | None -> fail lineno "expected key=value, got %S" word
  | Some i ->
      ( String.sub word 0 i,
        String.sub word (i + 1) (String.length word - i - 1) )

let float_of lineno key v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail lineno "invalid float for %s: %S" key v

let int_of lineno key v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail lineno "invalid int for %s: %S" key v

let parse_task lineno words =
  match words with
  | name :: attrs ->
      let name = unescape_name lineno name in
      let w_ppe = ref None
      and w_spe = ref None
      and peek = ref 0
      and stateful = ref false
      and read_bytes = ref 0.
      and write_bytes = ref 0. in
      let set word =
        let key, v = keyval lineno word in
        match key with
        | "wppe" -> w_ppe := Some (float_of lineno key v)
        | "wspe" -> w_spe := Some (float_of lineno key v)
        | "peek" -> peek := int_of lineno key v
        | "stateful" -> stateful := int_of lineno key v <> 0
        | "read" -> read_bytes := float_of lineno key v
        | "write" -> write_bytes := float_of lineno key v
        | _ -> fail lineno "unknown task attribute %S" key
      in
      List.iter set attrs;
      let require what = function
        | Some v -> v
        | None -> fail lineno "task %s: missing %s" name what
      in
      Task.make ~name
        ~w_ppe:(require "wppe" !w_ppe)
        ~w_spe:(require "wspe" !w_spe)
        ~peek:!peek ~stateful:!stateful ~read_bytes:!read_bytes
        ~write_bytes:!write_bytes ()
  | [] -> fail lineno "task line without a name"

let of_string s =
  let b = Graph.builder () in
  let ids = Hashtbl.create 16 in
  let handle lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match split_words line with
    | [] -> ()
    | "task" :: rest ->
        let task = parse_task lineno rest in
        let id =
          try Graph.add_task b task
          with Invalid_argument m -> fail lineno "%s" m
        in
        Hashtbl.replace ids task.Task.name id
    | "edge" :: src :: dst :: attrs ->
        let lookup word =
          let name = unescape_name lineno word in
          match Hashtbl.find_opt ids name with
          | Some id -> id
          | None -> fail lineno "edge references unknown task %S" name
        in
        let data = ref None in
        let set word =
          let key, v = keyval lineno word in
          match key with
          | "data" -> data := Some (float_of lineno key v)
          | _ -> fail lineno "unknown edge attribute %S" key
        in
        List.iter set attrs;
        let data_bytes =
          match !data with
          | Some d -> d
          | None -> fail lineno "edge without data= attribute"
        in
        (try Graph.add_edge b ~src:(lookup src) ~dst:(lookup dst) ~data_bytes
         with Invalid_argument m -> fail lineno "%s" m)
    | word :: _ -> fail lineno "unknown directive %S" word
  in
  List.iteri
    (fun i line -> handle (i + 1) line)
    (String.split_on_char '\n' s);
  try Graph.build b with Invalid_argument m -> raise (Parse_error (0, m))

let to_file g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
