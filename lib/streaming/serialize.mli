(** Plain-text (de)serialization of application graphs.

    The format is line based; blank lines and [#] comments are ignored:
    {v
    task <name> wppe=<float> wspe=<float> [peek=<int>] [stateful=<0|1>]
         [read=<float>] [write=<float>]
    edge <src-name> <dst-name> data=<float>
    v}
    Task lines must precede the edges that mention them. Task names are
    free-form non-empty strings: bytes that would break tokenization
    (whitespace, ['#'], ['='], ['%'], non-printables) are
    percent-encoded as [%XX] on output and decoded on input, so
    [of_string (to_string g)] reconstructs [g] exactly — the property
    test_streaming checks over generated graphs, and the foundation of
    the canonical fingerprints ({!Canonical}) the service layer keys
    its mapping cache on. *)

exception Parse_error of int * string
(** [(line number, message)]. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t

val to_file : Graph.t -> string -> unit
val of_file : string -> Graph.t
