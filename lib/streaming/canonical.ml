module Fnv = Support.Fnv

(* Initial colour: every task attribute except the name. *)
let task_color (t : Task.t) =
  let open Fnv in
  let h = empty in
  let h = add_float h t.Task.w_ppe in
  let h = add_float h t.Task.w_spe in
  let h = add_int h t.Task.peek in
  let h = add_bool h t.Task.stateful in
  let h = add_float h t.Task.read_bytes in
  add_float h t.Task.write_bytes

(* One refinement round: absorb the sorted multisets of (edge size,
   neighbour colour) pairs on each side. Sorting makes the result
   independent of edge order; separate folds keep in- and out-
   neighbourhoods from cancelling each other. *)
let refine g colors =
  let n = Graph.n_tasks g in
  let signature v =
    let side tag edge_ids endpoint =
      let sigs =
        List.map
          (fun e ->
            let edge = Graph.edge g e in
            (Int64.bits_of_float edge.Graph.data_bytes, colors.(endpoint edge)))
          edge_ids
        |> List.sort compare
      in
      List.fold_left
        (fun h (data, c) -> Fnv.add_value (Fnv.add_value h data) c)
        (Fnv.add_int Fnv.empty tag)
        sigs
    in
    let h = Fnv.add_value Fnv.empty colors.(v) in
    let h = Fnv.add_value h (side 1 (Graph.in_edges g v) (fun e -> e.Graph.src)) in
    Fnv.add_value h (side 2 (Graph.out_edges g v) (fun e -> e.Graph.dst))
  in
  Array.init n signature

let colors g =
  let colors = ref (Array.init (Graph.n_tasks g) (fun v -> task_color (Graph.task g v))) in
  (* depth + 2 rounds let a colour absorb the whole reachable
     neighbourhood of its task along the longest path, both ways. *)
  for _ = 1 to Graph.depth g + 2 do
    colors := refine g !colors
  done;
  !colors

let order g =
  let colors = colors g in
  let ids = Array.init (Graph.n_tasks g) Fun.id in
  (* Stable: tasks with equal final colours (interchangeable up to the
     refinement's power) keep their input order. *)
  let key v =
    (colors.(v), List.length (Graph.in_edges g v), List.length (Graph.out_edges g v))
  in
  let cmp a b =
    let (ca, ia, oa), (cb, ib, ob) = (key a, key b) in
    let c = Int64.unsigned_compare ca cb in
    if c <> 0 then c else compare (ia, oa) (ib, ob)
  in
  let l = Array.to_list ids in
  Array.of_list (List.stable_sort cmp l)

let to_string g =
  let ord = order g in
  let n = Graph.n_tasks g in
  let pos = Array.make n 0 in
  Array.iteri (fun p id -> pos.(id) <- p) ord;
  let tasks =
    Array.init n (fun p ->
        { (Graph.task g ord.(p)) with Task.name = "t" ^ string_of_int p })
  in
  let edges =
    List.init (Graph.n_edges g) (fun e ->
        let { Graph.src; dst; data_bytes } = Graph.edge g e in
        (pos.(src), pos.(dst), data_bytes))
    |> List.sort compare
  in
  Serialize.to_string (Graph.of_tasks tasks edges)

let fingerprint g = Fnv.of_string (to_string g)
