type t = {
  name : string;
  w_ppe : float;
  w_spe : float;
  peek : int;
  stateful : bool;
  read_bytes : float;
  write_bytes : float;
}

let make ?(peek = 0) ?(stateful = false) ?(read_bytes = 0.) ?(write_bytes = 0.)
    ~name ~w_ppe ~w_spe () =
  if name = "" then invalid_arg "Task.make: empty name";
  if w_ppe < 0. || w_spe < 0. then invalid_arg "Task.make: negative cost";
  if peek < 0 then invalid_arg "Task.make: negative peek";
  if read_bytes < 0. || write_bytes < 0. then
    invalid_arg "Task.make: negative memory traffic";
  { name; w_ppe; w_spe; peek; stateful; read_bytes; write_bytes }

let w t = function Cell.Platform.PPE -> t.w_ppe | Cell.Platform.SPE -> t.w_spe

let pp ppf t =
  Format.fprintf ppf "%s{wPPE=%.3g wSPE=%.3g peek=%d%s%s%s}" t.name t.w_ppe
    t.w_spe t.peek
    (if t.stateful then " stateful" else "")
    (if t.read_bytes > 0. then Printf.sprintf " read=%.0fB" t.read_bytes else "")
    (if t.write_bytes > 0. then Printf.sprintf " write=%.0fB" t.write_bytes
     else "")
