(** Canonical form of an application graph.

    Two graphs that differ only by task names, task insertion order or
    edge insertion order describe the same streaming application, and a
    mapping cache must treat them as one key. This module computes a
    canonical task order by Weisfeiler–Leman-style colour refinement —
    every task starts from a hash of its own cost/memory attributes
    (names excluded) and repeatedly absorbs the sorted multisets of its
    in- and out-neighbour colours with the connecting edge sizes — and
    derives from it a canonical text form and a 64-bit FNV-1a
    fingerprint ({!Support.Fnv}, the same scheme as
    [Cellsched.Mapping.fingerprint]).

    Guarantees: the fingerprint is {e invariant} under task
    relabeling/reordering and edge reordering (every ingredient is a
    sorted multiset or an attribute hash). Distinctness of
    non-isomorphic graphs is only probabilistic — a 64-bit hash can
    collide, and colour refinement cannot separate some highly regular
    graphs — so consumers that transport cached results across a
    fingerprint match must validate the result on the target graph
    (the service layer does; see DESIGN.md §14). Tasks left with equal
    final colours (exactly identical attributes in symmetric positions)
    keep their relative input order, which is canonical precisely when
    such tasks are interchangeable. *)

val order : Graph.t -> int array
(** Task ids in canonical order: element [p] is the id of the task at
    canonical position [p]. *)

val to_string : Graph.t -> string
(** Canonical text form: the {!Serialize} format with tasks renamed
    [t0 .. tN-1] in canonical order and edges sorted by canonical
    endpoint positions. Equal strings for relabeled/reordered variants
    of the same graph. *)

val fingerprint : Graph.t -> int64
(** FNV-1a of {!to_string}. *)
