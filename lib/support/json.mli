(** Minimal JSON: a value type, a strict recursive-descent parser and a
    compact printer.

    Just enough for the repo's persistence formats (the service-layer
    mapping cache) without an external dependency. Numbers are OCaml
    floats printed with ["%.17g"], so every double — periods included —
    round-trips bitwise. The parser rejects trailing garbage and deeply
    nested input instead of overflowing the stack; it accepts the JSON
    this printer emits plus arbitrary standard JSON (escapes, unicode
    [\uXXXX] folded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** [Error msg] carries a byte offset and a reason; never raises. *)

val to_string : t -> string
(** Compact (no whitespace) rendering with proper string escaping.
    Non-finite numbers render as [null] (JSON has no inf/nan token);
    callers that must round-trip them exactly should box hex-float
    strings ([Printf "%h"]) instead. *)

(** {1 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an object. *)

val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
