type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let max_depth = 256

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail (!pos, m))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, got %C" c c'
    | None -> fail "expected %C, got end of input" c
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let utf8 buf code =
    (* Encode one scalar value; unpaired surrogates become U+FFFD. *)
    let code =
      if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code
    in
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with _ -> fail "invalid \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> utf8 buf (hex4 ())
          | _ -> fail "invalid escape \\%C" e);
          loop ())
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail "invalid number %S" lit
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let binding () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let items = ref [ binding () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := binding () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let escape_string buf str =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    str;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f when not (Float.is_finite f) ->
        (* JSON has no inf/nan token; encode non-finite floats as hex-float
           strings ([Printf %h]) before boxing when they must round-trip. *)
        Buffer.add_string buf "null"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s -> escape_string buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj items ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            emit item)
          items;
        Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

let member key = function
  | Obj items -> List.assoc_opt key items
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
