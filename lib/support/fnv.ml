type t = int64

let empty = 0xcbf29ce484222325L
let prime = 0x100000001b3L
let add_value h v = Int64.mul (Int64.logxor h v) prime
let add_int h i = add_value h (Int64.of_int i)
let add_bool h b = add_value h (if b then 1L else 0L)
let add_float h f = add_value h (Int64.bits_of_float f)

let add_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let of_string s = add_string empty s
let to_hex h = Printf.sprintf "%016Lx" h
