(** 64-bit FNV-1a hashing.

    The single hashing scheme of the codebase: [Cellsched.Mapping]
    fingerprints (the deterministic tie-break key of parallel
    searches), the canonical graph fingerprints of
    {!Streaming.Canonical} and the request keys of the service layer
    all fold through these primitives, so equal inputs hash equally
    across layers, runs and platforms.

    Two granularities are provided. [add_string] is the textbook
    byte-wise FNV-1a. [add_value] folds one full 64-bit word per step
    (xor then multiply) — the historical [Mapping.fingerprint] scheme,
    kept bit-for-bit so existing fingerprints are unchanged. Both are
    fine as non-cryptographic fingerprints; neither resists
    adversarial collisions. *)

type t = int64
(** Running hash state (also the final digest). *)

val empty : t
(** The FNV-1a offset basis, [0xcbf29ce484222325]. *)

val add_value : t -> int64 -> t
(** Fold one 64-bit word: [(h lxor v) * prime]. *)

val add_int : t -> int -> t
val add_bool : t -> bool -> t

val add_float : t -> float -> t
(** Folds [Int64.bits_of_float] — bitwise, so [-0.] and [0.] differ
    and every NaN payload is distinguished. *)

val add_string : t -> string -> t
(** Byte-wise FNV-1a over the string contents. *)

val of_string : string -> t
(** [add_string empty]. *)

val to_hex : t -> string
(** 16 lower-case hex digits, zero-padded. *)
