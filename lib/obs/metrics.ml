(* Domain-safety: every metric value lives in an [Atomic.t] (plain
   [incr]/[fetch_and_add] for ints, retry-CAS for float accumulation),
   so concurrent updates from multiple domains never lose increments.
   Registration and traversal share a per-registry mutex because
   [Hashtbl] is not safe under concurrent mutation; hot paths hoist
   handles, so the lock is off the increment path. A multi-field
   histogram observation is not one atomic transaction — a snapshot
   racing an [observe] can see [count] without the matching [sum] —
   which is acceptable for monitoring output and documented in the
   interface. *)

module Counter = struct
  type t = { c : int Atomic.t }

  let inc t = Atomic.incr t.c

  let add t n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add t.c n)

  let value t = Atomic.get t.c
end

module Gauge = struct
  type t = { g : float Atomic.t }

  let set t v = Atomic.set t.g v

  let rec add t v =
    let cur = Atomic.get t.g in
    if not (Atomic.compare_and_set t.g cur (cur +. v)) then add t v

  let value t = Atomic.get t.g
end

module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int Atomic.t array;  (* length bounds + 1; last = overflow *)
    sum : float Atomic.t;
    n : int Atomic.t;
  }

  let rec add_sum t v =
    let cur = Atomic.get t.sum in
    if not (Atomic.compare_and_set t.sum cur (cur +. v)) then add_sum t v

  let observe t v =
    let nb = Array.length t.bounds in
    (* Binary search for the first bound >= v. *)
    let lo = ref 0 and hi = ref nb in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    Atomic.incr t.counts.(!lo);
    add_sum t v;
    Atomic.incr t.n

  let count t = Atomic.get t.n
  let sum t = Atomic.get t.sum

  let buckets t =
    Array.init (Array.length t.counts) (fun i ->
        ( (if i < Array.length t.bounds then t.bounds.(i) else infinity),
          Atomic.get t.counts.(i) ))

  let log_buckets ?(lo = 1e-6) ?(factor = 10. ** (1. /. 3.)) ?(count = 36) () =
    if not (lo > 0.) then invalid_arg "Metrics.log_buckets: lo must be > 0";
    if not (factor > 1.) then invalid_arg "Metrics.log_buckets: factor must be > 1";
    if count <= 0 then invalid_arg "Metrics.log_buckets: count must be > 0";
    Array.init count (fun i -> lo *. (factor ** float_of_int i))

  (* Quantile estimate from non-cumulative buckets: cumulative walk to
     the bucket holding rank [q * total], then linear interpolation
     between its edges. The first bucket's lower edge is unknown, so we
     use 0 when its bound is positive (durations) and the bound itself
     otherwise; the overflow bucket has no upper edge, so it reports its
     lower one. Monotone in [q] by construction. *)
  let quantile_of_buckets buckets q =
    if not (q >= 0. && q <= 1.) then
      invalid_arg "Metrics.histogram_quantile: q must be in [0, 1]";
    let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
    if total = 0 then Float.nan
    else begin
      let target = q *. float_of_int total in
      let result = ref Float.nan in
      let cum = ref 0 in
      (try
         Array.iteri
           (fun i (ub, n) ->
             let prev = !cum in
             cum := !cum + n;
             if n > 0 && float_of_int !cum >= target then begin
               let lower =
                 if i = 0 then
                   let b0 = fst buckets.(0) in
                   if b0 > 0. then 0. else b0
                 else fst buckets.(i - 1)
               in
               (if Float.is_finite ub then
                  let frac =
                    Float.max 0. ((target -. float_of_int prev) /. float_of_int n)
                  in
                  result := lower +. (frac *. (ub -. lower))
                else result := lower);
               raise Exit
             end)
           buckets
       with Exit -> ());
      !result
    end

  let quantile t q = quantile_of_buckets (buckets t) q
end

let histogram_quantile = Histogram.quantile_of_buckets

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type kind = K_counter | K_gauge | K_histogram of float array

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_labels : string list;
  children : (string list, metric) Hashtbl.t;
  mutable child_order : string list list;  (* reversed first-use order *)
}

type t = {
  lock : Mutex.t;  (* guards both hashtables and the order lists *)
  families : (string, family) Hashtbl.t;
  mutable order : string list;  (* reversed registration order *)
}

let create () =
  { lock = Mutex.create (); families = Hashtbl.create 32; order = [] }

let default = create ()

let locked registry f =
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) f

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | K_counter, K_counter | K_gauge, K_gauge -> true
  | K_histogram x, K_histogram y -> x = y
  | _ -> false

let check_buckets name bounds =
  let nb = Array.length bounds in
  if nb = 0 then invalid_arg (name ^ ": histogram needs at least one bucket");
  for i = 1 to nb - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg (name ^ ": bucket bounds must be strictly increasing")
  done

(* Call with [registry.lock] held. *)
let family_locked registry ~help ~kind ~labels name =
  match Hashtbl.find_opt registry.families name with
  | Some f ->
      if not (same_kind f.f_kind kind) || f.f_labels <> labels then
        invalid_arg
          (Printf.sprintf
             "Metrics: %s re-registered with a different kind or labels" name);
      f
  | None ->
      (match kind with
      | K_histogram bounds -> check_buckets name bounds
      | _ -> ());
      let f =
        {
          f_name = name;
          f_help = help;
          f_kind = kind;
          f_labels = labels;
          children = Hashtbl.create 4;
          child_order = [];
        }
      in
      Hashtbl.replace registry.families name f;
      registry.order <- name :: registry.order;
      f

let fresh_metric = function
  | K_counter -> M_counter { Counter.c = Atomic.make 0 }
  | K_gauge -> M_gauge { Gauge.g = Atomic.make 0. }
  | K_histogram bounds ->
      M_histogram
        {
          Histogram.bounds;
          counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          n = Atomic.make 0;
        }

(* Call with the registry lock held. *)
let child_locked f values =
  if List.length values <> List.length f.f_labels then
    invalid_arg
      (Printf.sprintf "Metrics: %s expects %d label values" f.f_name
         (List.length f.f_labels));
  match Hashtbl.find_opt f.children values with
  | Some m -> m
  | None ->
      let m = fresh_metric f.f_kind in
      Hashtbl.replace f.children values m;
      f.child_order <- values :: f.child_order;
      m

let register registry ~help ~kind ~labels name values =
  locked registry (fun () ->
      child_locked (family_locked registry ~help ~kind ~labels name) values)

let as_counter = function M_counter c -> c | _ -> assert false
let as_gauge = function M_gauge g -> g | _ -> assert false
let as_histogram = function M_histogram h -> h | _ -> assert false

let counter ?(registry = default) ?(help = "") name =
  as_counter (register registry ~help ~kind:K_counter ~labels:[] name [])

let gauge ?(registry = default) ?(help = "") name =
  as_gauge (register registry ~help ~kind:K_gauge ~labels:[] name [])

let histogram ?(registry = default) ?(help = "") ?buckets name =
  let bounds =
    match buckets with Some b -> b | None -> Histogram.log_buckets ()
  in
  as_histogram
    (register registry ~help ~kind:(K_histogram bounds) ~labels:[] name [])

let counter_family ?(registry = default) ?(help = "") name ~labels values =
  as_counter (register registry ~help ~kind:K_counter ~labels name values)

let gauge_family ?(registry = default) ?(help = "") name ~labels values =
  as_gauge (register registry ~help ~kind:K_gauge ~labels name values)

let histogram_family ?(registry = default) ?(help = "") ?buckets name ~labels
    values =
  let bounds =
    match buckets with Some b -> b | None -> Histogram.log_buckets ()
  in
  as_histogram
    (register registry ~help ~kind:(K_histogram bounds) ~labels name values)

(* --- snapshot and export ------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { sum : float; count : int; buckets : (float * int) array }

type family_snapshot = {
  name : string;
  help : string;
  kind : string;
  label_names : string list;
  samples : (string list * value) list;
}

let sample_of = function
  | M_counter c -> Counter_v (Counter.value c)
  | M_gauge g -> Gauge_v (Gauge.value g)
  | M_histogram h ->
      Histogram_v
        { sum = Histogram.sum h; count = Histogram.count h;
          buckets = Histogram.buckets h }

let snapshot registry =
  locked registry (fun () ->
      List.rev_map
        (fun name ->
          let f = Hashtbl.find registry.families name in
          {
            name = f.f_name;
            help = f.f_help;
            kind = kind_name f.f_kind;
            label_names = f.f_labels;
            samples =
              List.rev_map
                (fun values ->
                  (values, sample_of (Hashtbl.find f.children values)))
                f.child_order;
          })
        registry.order)

let reset registry =
  locked registry (fun () ->
      Hashtbl.iter
        (fun _ f ->
          Hashtbl.iter
            (fun _ -> function
              | M_counter c -> Atomic.set c.Counter.c 0
              | M_gauge g -> Atomic.set g.Gauge.g 0.
              | M_histogram h ->
                  Array.iter (fun c -> Atomic.set c 0) h.Histogram.counts;
                  Atomic.set h.Histogram.sum 0.;
                  Atomic.set h.Histogram.n 0)
            f.children)
        registry.families)

(* --- JSON --------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"+Inf\""
  else if v = neg_infinity then "\"-Inf\""
  else Printf.sprintf "%.17g" v

let to_json registry =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"families\":[";
  let first_f = ref true in
  List.iter
    (fun (f : family_snapshot) ->
      if not !first_f then Buffer.add_char buf ',';
      first_f := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"help\":\"%s\",\"labels\":[%s],\"samples\":["
           (json_escape f.name) f.kind (json_escape f.help)
           (String.concat ","
              (List.map (fun l -> "\"" ^ json_escape l ^ "\"") f.label_names)));
      let first_s = ref true in
      List.iter
        (fun (values, v) ->
          if not !first_s then Buffer.add_char buf ',';
          first_s := false;
          Buffer.add_string buf
            (Printf.sprintf "{\"label_values\":[%s],"
               (String.concat ","
                  (List.map (fun l -> "\"" ^ json_escape l ^ "\"") values)));
          (match v with
          | Counter_v c -> Buffer.add_string buf (Printf.sprintf "\"value\":%d" c)
          | Gauge_v g ->
              Buffer.add_string buf
                (Printf.sprintf "\"value\":%s" (json_float g))
          | Histogram_v { sum; count; buckets } ->
              Buffer.add_string buf
                (Printf.sprintf "\"sum\":%s,\"count\":%d,\"buckets\":[%s]"
                   (json_float sum) count
                   (String.concat ","
                      (Array.to_list
                         (Array.map
                            (fun (le, n) ->
                              Printf.sprintf "{\"le\":%s,\"count\":%d}"
                                (json_float le) n)
                            buckets)))));
          Buffer.add_char buf '}')
        f.samples;
      Buffer.add_string buf "]}")
    (snapshot registry);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- Prometheus text exposition ----------------------------------------- *)

(* The text exposition has two distinct escaping rules: HELP text
   escapes only backslash and newline, while quoted label values also
   escape the double quote. Sharing one escaper would either corrupt
   label values or add a spurious backslash before quotes in HELP. *)
let prom_escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels names values =
  match names with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map2
             (fun n v -> Printf.sprintf "%s=\"%s\"" n (prom_escape_label v))
             names values)
      ^ "}"

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let to_prometheus registry =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : family_snapshot) ->
      if f.help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" f.name (prom_escape_help f.help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name f.kind);
      List.iter
        (fun (values, v) ->
          match v with
          | Counter_v c ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" f.name
                   (prom_labels f.label_names values)
                   c)
          | Gauge_v g ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" f.name
                   (prom_labels f.label_names values)
                   (prom_float g))
          | Histogram_v { sum; count; buckets } ->
              let cumulative = ref 0 in
              Array.iter
                (fun (le, n) ->
                  cumulative := !cumulative + n;
                  let labels =
                    prom_labels (f.label_names @ [ "le" ])
                      (values @ [ prom_float le ])
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" f.name labels !cumulative))
                buckets;
              let plain = prom_labels f.label_names values in
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" f.name plain (prom_float sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" f.name plain count))
        f.samples)
    (snapshot registry);
  Buffer.contents buf
