(** Structured event sink with a Chrome [trace_event] exporter.

    Instrumented code emits events into a {!sink}; the ring-buffered
    implementation keeps the most recent [capacity] events, timestamps
    them through a {!Clock.t} (a fake clock keeps tests deterministic),
    and totally orders them by emission sequence number. {!to_chrome_json}
    renders any event list as a JSON object Perfetto and
    [chrome://tracing] open directly.

    The {!null} sink is the default everywhere: emitting into it is a
    single pattern match and no allocation, so hot paths are unaffected
    until a caller opts in. *)

(** {1 Clocks} *)

module Clock : sig
  type t

  val monotonic : unit -> t
  (** Wall-clock time rebased to 0 at creation. *)

  val fake : ?start:float -> unit -> t
  (** Manual clock for deterministic tests; starts at [start]
      (default [0.]). *)

  val now : t -> float
  (** Seconds since the clock's origin. *)

  val advance : t -> float -> unit
  (** Move a fake clock forward.
      @raise Invalid_argument on a monotonic clock or a negative step. *)
end

(** {1 Events} *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type phase =
  | Complete of float  (** a span with the given duration, seconds *)
  | Instant
  | Counter  (** sampled values; the numeric [args] are the series *)
  | Metadata  (** e.g. thread naming; [args] carry the payload *)

type event = {
  seq : int;  (** emission order — the deterministic total order *)
  ts : float;  (** seconds on the sink's clock *)
  name : string;
  cat : string;
  pid : int;
  tid : int;
  phase : phase;
  args : (string * arg) list;
}

(** {1 Sinks} *)

type sink

val null : sink
(** Swallows everything; {!enabled} is [false]. *)

val ring : ?capacity:int -> ?pid:int -> clock:Clock.t -> unit -> sink
(** Keeps the last [capacity] (default 65536) events, overwriting the
    oldest; {!dropped} counts the overwritten ones.
    @raise Invalid_argument when [capacity <= 0]. *)

val enabled : sink -> bool
(** [false] only for {!null} — the guard instrumentation sites use. *)

val clock : sink -> Clock.t option

val emit :
  sink ->
  ?cat:string ->
  ?tid:int ->
  ?ts:float ->
  ?phase:phase ->
  ?args:(string * arg) list ->
  string ->
  unit
(** Record one event. [ts] defaults to the sink clock's now; [phase]
    defaults to {!Instant}; [cat] to [""]; [tid] to [0]. No-op on
    {!null}. *)

val length : sink -> int
val dropped : sink -> int

val events : sink -> event list
(** Buffered events, oldest first (i.e. by [seq]). *)

val clear : sink -> unit

(** {1 Chrome trace export} *)

val to_chrome_json : event list -> string
(** A [{"traceEvents": [...], "displayTimeUnit": "ms"}] object with one
    entry per event: phase ["X"] (with [dur]) for {!Complete}, ["i"] for
    {!Instant}, ["C"] for {!Counter}, ["M"] for {!Metadata}; [ts]/[dur]
    in microseconds. Events are emitted in [seq] order. *)

val thread_name_event : ?pid:int -> tid:int -> string -> event
(** The Chrome metadata event naming thread [tid] — use it so PE lanes
    show up with platform names in Perfetto. *)
