(** Zero-dependency metrics registry.

    Counters, gauges and fixed-bucket histograms, optionally grouped in
    labeled families, registered by name in a {!t}. Instrumented code
    creates handles once (registration is idempotent by name) and bumps
    them on the hot path; exporters walk the registry and render a
    point-in-time {!snapshot}, JSON, or Prometheus text exposition.

    All hooks across the scheduler are default-off: they test
    {!enabled} — a single bool read — before touching any handle, so
    the cost with metrics off is one predictable branch per site.

    {b Domain safety.} Every value is [Atomic]-backed: concurrent
    [inc]/[add]/[observe]/[set] from multiple domains never lose
    updates. Registration, snapshotting and reset serialize on a
    per-registry mutex, so handles may be created from any domain
    (hoist them off hot paths — each family call takes the lock). The
    only relaxation: one histogram observation updates bucket, sum and
    count as three separate atomic writes, so a concurrent snapshot
    can catch them out of sync by a single in-flight observation. *)

(** {1 Handles} *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment (counters are
      monotonic). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Adds the observation to the first bucket whose upper bound is
      [>=] the value, or to the overflow bucket. *)

  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) array
  (** Per-bucket (non-cumulative) counts, one pair per upper bound plus
      a final [(infinity, overflow)] entry. *)

  val log_buckets : ?lo:float -> ?factor:float -> ?count:int -> unit -> float array
  (** Log-scale upper bounds [lo *. factor^i] for [i = 0 .. count-1].
      Defaults: [lo = 1e-6], [factor = 10^(1/3)] (three buckets per
      decade), [count = 36] — spanning 1 µs to beyond 1 ks (bound 27),
      the range of every duration this codebase measures.
      @raise Invalid_argument unless [lo > 0.], [factor > 1.], [count > 0]. *)

  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-quantile ([0. <= q <= 1.]) from
      the live bucket counts — see {!histogram_quantile}. *)
end

(** {1 Registry} *)

type t

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrumentation site uses. *)

val enabled : unit -> bool
(** Whether the built-in instrumentation sites are live. [false] at
    start-up: hot paths pay one branch and nothing else. *)

val set_enabled : bool -> unit

(** {1 Registration}

    Idempotent by name: re-registering returns the existing handle.
    @raise Invalid_argument when a name is reused with a different
    metric kind, label set or bucket layout. *)

val counter : ?registry:t -> ?help:string -> string -> Counter.t
val gauge : ?registry:t -> ?help:string -> string -> Gauge.t

val histogram :
  ?registry:t -> ?help:string -> ?buckets:float array -> string -> Histogram.t
(** [buckets] are strictly increasing upper bounds; default
    {!Histogram.log_buckets}[ ()]. *)

(** Labeled families: one metric per label-value vector. The returned
    function is the child factory; it caches children, so calling it on
    the hot path is a hashtable lookup — hoist it when that matters. *)

val counter_family :
  ?registry:t -> ?help:string -> string -> labels:string list ->
  string list -> Counter.t

val gauge_family :
  ?registry:t -> ?help:string -> string -> labels:string list ->
  string list -> Gauge.t

val histogram_family :
  ?registry:t -> ?help:string -> ?buckets:float array -> string ->
  labels:string list -> string list -> Histogram.t

(** {1 Snapshot and export} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { sum : float; count : int; buckets : (float * int) array }

type family_snapshot = {
  name : string;
  help : string;
  kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  label_names : string list;
  samples : (string list * value) list;
      (** One entry per label-value vector, in first-use order;
          unlabeled metrics have a single [([], v)] sample. *)
}

val snapshot : t -> family_snapshot list
(** Families in registration order — deterministic output. *)

val reset : t -> unit
(** Zero every value; handles stay registered and live. *)

val to_json : t -> string
(** The whole registry as one JSON object:
    [{"families": [{"name": ..., "kind": ..., "samples": [...]}]}]. *)

val to_prometheus : t -> string
(** Prometheus text exposition format: one [# HELP]/[# TYPE] pair per
    family (never repeated per labeled child) followed by its samples,
    with cumulative [_bucket{le=...}] histogram series. HELP text
    escapes backslash and newline; label values additionally escape
    the double quote. *)

val histogram_quantile : (float * int) array -> float -> float
(** [histogram_quantile buckets q] estimates the [q]-quantile from
    non-cumulative buckets as returned by {!Histogram.buckets} or
    carried in {!Histogram_v}: a cumulative walk finds the bucket
    holding rank [q * total], then linear interpolation between its
    edges locates the estimate. The first bucket's lower edge is taken
    as [0.] when its bound is positive and the bound itself otherwise;
    the overflow bucket reports its lower edge. Returns [nan] on an
    empty histogram. Monotone in [q], so p50 <= p95 <= p99 always
    holds.
    @raise Invalid_argument unless [0. <= q <= 1.]. *)
