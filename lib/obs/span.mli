(** Request-scoped tracing: spans, contexts and a lock-free collector.

    A {!span} is one timed stage of one request: it carries the
    request's trace id, its own content-derived span id, its parent's
    id, start/stop timestamps on the process monotonic-ish clock
    ({!now}), and a small attribute list. Instrumented code receives a
    {!ctx} — trace id plus position in the tree — and opens children
    with {!with_span}/{!record}; the {!null} context turns every hook
    into a single pattern match, so the default-off path costs nothing
    measurable.

    {b Identity is content, not allocation order.} A span's [path] is
    its slash-joined ancestor names (["/request/solve/dive"]), and its
    [id] is a 64-bit FNV-1a hash of [trace ^ path]. Two runs that open
    the same stages for the same request therefore produce the same
    ids and parentage whatever the domain interleaving — the property
    the pools-1/2/4 determinism tests pin down. Sites must keep sibling
    names unique within one parent (e.g. ["cache"] vs
    ["cache@dispatch"], ["entrant:greedy-mem"], ["subtree:<hash>"]);
    {!spans} breaks path ties by timestamp, which is the one
    nondeterministic component.

    {b Domain safety.} A {!collector} holds a fixed array of
    [Atomic]-backed list heads indexed by the pushing domain (PR-4
    registry style): {!with_span} from any {!Par.Pool} worker or B&B
    subtree task is a retry-CAS prepend, lock-free and never lost.
    {!spans} is the single merge point: it drains nothing, sorts the
    union by [(trace, path, t_start)] and returns a deterministic
    stream (timestamps aside). *)

type attr = Int of int | Float of float | String of string | Bool of bool

type span = {
  trace : string;  (** request-scoped trace id *)
  id : int64;  (** FNV-1a of [trace ^ path]; never [0L] *)
  parent : int64;  (** [0L] for a root span *)
  name : string;  (** last path component *)
  path : string;  (** ["/a/b/c"] — the deterministic sort key *)
  t_start : float;  (** seconds on {!now}'s clock *)
  t_stop : float;
  attrs : (string * attr) list;
}

type collector

val collector : unit -> collector
(** A fresh, empty collector. Cheap enough to create per request. *)

val spans : collector -> span list
(** Everything collected so far, merged across domains and sorted by
    [(trace, path, t_start, t_stop)] — parents sort before their
    children (a path is a strict prefix of its descendants').
    Deterministic up to timestamps whenever sibling names are unique. *)

val count : collector -> int
val clear : collector -> unit

(** {1 Contexts} *)

type ctx
(** Immutable; safe to capture in closures that run on other domains. *)

val null : ctx
(** The default everywhere: every operation below is a no-op. *)

val active : ctx -> bool

val root : collector -> trace:string -> ctx
(** A live context at the top of [trace]'s tree. Opening a child of it
    records a root span ([parent = 0L]). *)

val now : unit -> float
(** The clock every span uses: wall seconds ([Unix.gettimeofday]),
    shared process-wide so stages recorded on different domains nest
    consistently. *)

val sub : ctx -> string -> ctx
(** Descend one level {e without} recording a span — for a stage whose
    own span is recorded later with {!record} (e.g. the request root,
    closed only when the reply is sent) but whose children must nest
    under it now. *)

val with_span : ctx -> ?attrs:(string * attr) list -> string -> (ctx -> 'a) -> 'a
(** [with_span ctx name f] times [f], passing it the child context, and
    records the span when [f] returns — also when it raises, with an
    extra [("raised", Bool true)] attribute. On {!null}: [f null]. *)

val with_span_attrs :
  ctx -> string -> (ctx -> 'a * (string * attr) list) -> 'a
(** Like {!with_span} for stages whose attributes are computed by the
    stage itself (solver counters); [f] returns [(value, attrs)]. On
    {!null}, [f null] must still return the pair (the attrs are
    dropped). *)

val record :
  ctx ->
  ?attrs:(string * attr) list ->
  ?t_start:float ->
  ?t_stop:float ->
  string ->
  unit
(** Record a child span with explicit endpoints (both default to
    {!now} [()]) — for stages measured across asynchronous boundaries,
    like an admission-queue wait whose start was stamped at receipt. *)

(** {1 Rendering} *)

val to_chrome_json : span list -> string
(** Chrome [trace_event] JSON: one phase-[X] event per span, [ts]
    rebased so the earliest span starts at 0, the span's [path],
    [trace] and attributes in [args]. Perfetto / [chrome://tracing]
    open it directly. *)

val render_flat : span list -> string
(** One line per span, paths explicit — the [TRACE] verb's body:
    {v span /request/solve dur_ms=12.345 nodes=4821 v}
    Lines follow {!spans} order, so a parent precedes its children and
    well-parentedness is checkable line by line. *)

val render_tree : span list -> string
(** Human-readable indented tree (two spaces per depth level):
    {v request 14.2ms status=ok
  queue 1.3ms
  solve 12.3ms nodes=4821 v} *)
