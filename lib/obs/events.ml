module Clock = struct
  type t = Wall of float  (* origin *) | Fake of float ref

  let monotonic () = Wall (Unix.gettimeofday ())
  let fake ?(start = 0.) () = Fake (ref start)

  let now = function
    | Wall origin -> Unix.gettimeofday () -. origin
    | Fake r -> !r

  let advance t dt =
    match t with
    | Wall _ -> invalid_arg "Events.Clock.advance: monotonic clock"
    | Fake r ->
        if dt < 0. then invalid_arg "Events.Clock.advance: negative step";
        r := !r +. dt
end

type arg = Int of int | Float of float | String of string | Bool of bool

type phase = Complete of float | Instant | Counter | Metadata

type event = {
  seq : int;
  ts : float;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  phase : phase;
  args : (string * arg) list;
}

type ring = {
  r_clock : Clock.t;
  r_pid : int;
  buf : event array;
  mutable filled : int;  (* number of live slots, <= capacity *)
  mutable next : int;  (* next write position *)
  mutable seq : int;
  mutable dropped : int;
}

type sink = Null | Ring of ring

let null = Null

let dummy_event =
  { seq = -1; ts = 0.; name = ""; cat = ""; pid = 0; tid = 0;
    phase = Instant; args = [] }

let ring ?(capacity = 65536) ?(pid = 1) ~clock () =
  if capacity <= 0 then invalid_arg "Events.ring: capacity must be positive";
  Ring
    {
      r_clock = clock;
      r_pid = pid;
      buf = Array.make capacity dummy_event;
      filled = 0;
      next = 0;
      seq = 0;
      dropped = 0;
    }

let enabled = function Null -> false | Ring _ -> true
let clock = function Null -> None | Ring r -> Some r.r_clock

let emit sink ?(cat = "") ?(tid = 0) ?ts ?(phase = Instant) ?(args = []) name =
  match sink with
  | Null -> ()
  | Ring r ->
      let ts = match ts with Some t -> t | None -> Clock.now r.r_clock in
      let e =
        { seq = r.seq; ts; name; cat; pid = r.r_pid; tid; phase; args }
      in
      r.seq <- r.seq + 1;
      let cap = Array.length r.buf in
      if r.filled = cap then r.dropped <- r.dropped + 1
      else r.filled <- r.filled + 1;
      r.buf.(r.next) <- e;
      r.next <- (r.next + 1) mod cap

let length = function Null -> 0 | Ring r -> r.filled
let dropped = function Null -> 0 | Ring r -> r.dropped

let events = function
  | Null -> []
  | Ring r ->
      let cap = Array.length r.buf in
      let start = (r.next - r.filled + cap) mod cap in
      List.init r.filled (fun i -> r.buf.((start + i) mod cap))

let clear = function
  | Null -> ()
  | Ring r ->
      r.filled <- 0;
      r.next <- 0;
      r.dropped <- 0

(* --- Chrome trace export ------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_arg = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then "null"
      else Printf.sprintf "%.17g" f
  | String s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> string_of_bool b

let json_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ json_arg v) args)
  ^ "}"

let to_chrome_json (evs : event list) =
  let evs = List.sort (fun (a : event) b -> compare a.seq b.seq) evs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      let ph, dur =
        match e.phase with
        | Complete d -> ("X", Printf.sprintf ",\"dur\":%.3f" (d *. 1e6))
        | Instant -> ("i", ",\"s\":\"t\"")
        | Counter -> ("C", "")
        | Metadata -> ("M", "")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f%s,\"pid\":%d,\"tid\":%d,\"args\":%s}"
           (json_escape e.name)
           (json_escape (if e.cat = "" then "default" else e.cat))
           ph (e.ts *. 1e6) dur e.pid e.tid (json_args e.args)))
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let thread_name_event ?(pid = 1) ~tid name =
  {
    seq = -1;
    ts = 0.;
    name = "thread_name";
    cat = "__metadata";
    pid;
    tid;
    phase = Metadata;
    args = [ ("name", String name) ];
  }
