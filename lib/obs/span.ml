type attr = Int of int | Float of float | String of string | Bool of bool

type span = {
  trace : string;
  id : int64;
  parent : int64;
  name : string;
  path : string;
  t_start : float;
  t_stop : float;
  attrs : (string * attr) list;
}

(* FNV-1a 64. Inlined rather than pulled from Support.Fnv so obs keeps
   its zero-dependency footprint (dune: unix only). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* trace and path are combined with a NUL separator — no valid path
   contains one, so distinct (trace, path) pairs can't collide by
   concatenation. 0L is reserved as "no parent". *)
let span_id ~trace ~path =
  let h = fnv1a64 (trace ^ "\x00" ^ path) in
  if Int64.equal h 0L then 1L else h

let now () = Unix.gettimeofday ()

(* Collector: per-domain CAS-prepend slots, PR-4 registry style. 16
   slots cover any realistic pool; collisions (domain ids beyond 16, or
   reused ids) are safe because prepend is a retry-CAS, merely
   contended. *)
let n_slots = 16

type collector = span list Atomic.t array

let collector () : collector = Array.init n_slots (fun _ -> Atomic.make [])

let push (c : collector) s =
  let slot = c.((Domain.self () :> int) land (n_slots - 1)) in
  let rec go () =
    let old = Atomic.get slot in
    if not (Atomic.compare_and_set slot old (s :: old)) then go ()
  in
  go ()

let compare_span a b =
  let c = String.compare a.trace b.trace in
  if c <> 0 then c
  else
    let c = String.compare a.path b.path in
    if c <> 0 then c
    else
      let c = Float.compare a.t_start b.t_start in
      if c <> 0 then c else Float.compare a.t_stop b.t_stop

let spans (c : collector) =
  let all = Array.fold_left (fun acc slot -> Atomic.get slot :: acc) [] c in
  List.sort compare_span (List.concat all)

let count (c : collector) =
  Array.fold_left (fun n slot -> n + List.length (Atomic.get slot)) 0 c

let clear (c : collector) = Array.iter (fun slot -> Atomic.set slot []) c

(* Contexts *)

type ctx = Null | On of { col : collector; trace : string; path : string }

let null = Null
let active = function Null -> false | On _ -> true
let root col ~trace = On { col; trace; path = "" }

let child_path path name = path ^ "/" ^ name

let sub ctx name =
  match ctx with
  | Null -> Null
  | On c -> On { c with path = child_path c.path name }

let emit (c : collector) ~trace ~path ~parent_path ~name ~t_start ~t_stop attrs =
  let parent = if parent_path = "" then 0L else span_id ~trace ~path:parent_path in
  push c
    { trace; id = span_id ~trace ~path; parent; name; path; t_start; t_stop;
      attrs }

let with_span ctx ?(attrs = []) name f =
  match ctx with
  | Null -> f Null
  | On c ->
      let path = child_path c.path name in
      let t_start = now () in
      let finish extra =
        emit c.col ~trace:c.trace ~path ~parent_path:c.path ~name ~t_start
          ~t_stop:(now ()) (attrs @ extra)
      in
      let v =
        try f (On { c with path })
        with e ->
          finish [ ("raised", Bool true) ];
          raise e
      in
      finish [];
      v

let with_span_attrs ctx name f =
  match ctx with
  | Null -> fst (f Null)
  | On c ->
      let path = child_path c.path name in
      let t_start = now () in
      let v, attrs =
        try f (On { c with path })
        with e ->
          emit c.col ~trace:c.trace ~path ~parent_path:c.path ~name ~t_start
            ~t_stop:(now ()) [ ("raised", Bool true) ];
          raise e
      in
      emit c.col ~trace:c.trace ~path ~parent_path:c.path ~name ~t_start
        ~t_stop:(now ()) attrs;
      v

let record ctx ?(attrs = []) ?t_start ?t_stop name =
  match ctx with
  | Null -> ()
  | On c ->
      let t = now () in
      let t_start = Option.value t_start ~default:t in
      let t_stop = Option.value t_stop ~default:t in
      emit c.col ~trace:c.trace ~path:(child_path c.path name) ~parent_path:c.path
        ~name ~t_start ~t_stop attrs

(* Rendering *)

let to_event_arg = function
  | Int i -> Events.Int i
  | Float f -> Events.Float f
  | String s -> Events.String s
  | Bool b -> Events.Bool b

let to_chrome_json spans_list =
  let t0 =
    List.fold_left (fun acc s -> Float.min acc s.t_start) infinity spans_list
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let events =
    List.mapi
      (fun i s ->
        {
          Events.seq = i;
          ts = s.t_start -. t0;
          name = s.name;
          cat = "span";
          pid = 0;
          tid = 0;
          phase = Events.Complete (Float.max 0. (s.t_stop -. s.t_start));
          args =
            ("path", Events.String s.path)
            :: ("trace", Events.String s.trace)
            :: List.map (fun (k, v) -> (k, to_event_arg v)) s.attrs;
        })
      spans_list
  in
  Events.to_chrome_json events

let attr_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> s
  | Bool b -> string_of_bool b

let attrs_suffix attrs =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (attr_to_string v)) attrs)

let dur_ms s = (s.t_stop -. s.t_start) *. 1e3

let render_flat spans_list =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "span %s dur_ms=%.3f%s\n" s.path (dur_ms s)
           (attrs_suffix s.attrs)))
    spans_list;
  Buffer.contents buf

let depth path =
  String.fold_left (fun n c -> if c = '/' then n + 1 else n) 0 path

let render_tree spans_list =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      let indent = String.make (2 * (depth s.path - 1)) ' ' in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %.1fms%s\n" indent s.name (dur_ms s)
           (attrs_suffix s.attrs)))
    spans_list;
  Buffer.contents buf
